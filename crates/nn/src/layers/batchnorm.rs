//! 2-D batch normalisation.

use reveil_tensor::Tensor;

use crate::layers::{backward_before_forward, check_backward_shape, expect_nchw, resize_buffer};
use crate::{Layer, Mode, NnError, Param};

/// Batch normalisation over the channel axis of `[n, c, h, w]` inputs.
///
/// In [`Mode::Train`] the layer normalises with batch statistics and updates
/// exponential running statistics; in [`Mode::Eval`] it normalises with the
/// running statistics, which keeps the layer differentiable with respect to
/// its input — a property Neural Cleanse's input-space optimisation relies
/// on.
///
/// All intermediates (the normalised activations x̂, per-channel statistics
/// and per-channel gradient accumulators) live in reusable buffers, so
/// forward and backward allocate nothing once warmed up — previously this
/// layer allocated three to four full-size tensors per pass.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    /// Normalised activations x̂ from the last forward pass.
    x_hat: Tensor,
    /// Per-channel batch mean (train mode).
    mean: Vec<f32>,
    /// Per-channel batch variance (train mode).
    var: Vec<f32>,
    /// Per-channel 1/√(var + ε) used in the forward pass.
    inv_std: Vec<f32>,
    /// Per-channel dγ / dβ accumulators (backward scratch).
    dgamma: Vec<f32>,
    dbeta: Vec<f32>,
    input_shape: Vec<usize>,
    mode: Mode,
    ready: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ = 1, β = 0, momentum 0.1 and
    /// ε = 1e-5 (the PyTorch defaults the paper trains with).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `channels` is zero.
    pub fn new(channels: usize) -> Result<Self, NnError> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "BatchNorm2d",
                message: "channels must be positive".to_string(),
            });
        }
        Ok(Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            x_hat: Tensor::default(),
            mean: Vec::new(),
            var: Vec::new(),
            inv_std: Vec::new(),
            dgamma: Vec::new(),
            dbeta: Vec::new(),
            input_shape: Vec::new(),
            mode: Mode::Eval,
            ready: false,
        })
    }

    /// Current running mean (one value per channel).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance (one value per channel).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        let (n, c, h, w) = expect_nchw("BatchNorm2d", input);
        assert_eq!(
            c, self.channels,
            "BatchNorm2d::forward configured for {} channels, got {c}",
            self.channels
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let gamma = self.gamma.value().data();
        let beta = self.beta.value().data();
        resize_buffer(out, input.shape());
        resize_buffer(&mut self.x_hat, input.shape());

        match mode {
            Mode::Train => {
                self.mean.clear();
                self.mean.resize(c, 0.0);
                self.var.clear();
                self.var.resize(c, 0.0);
                for img in 0..n {
                    for (ch, acc) in self.mean.iter_mut().enumerate() {
                        let base = (img * c + ch) * plane;
                        *acc += input.data()[base..base + plane].iter().sum::<f32>();
                    }
                }
                for v in &mut self.mean {
                    *v /= m;
                }
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        self.var[ch] += input.data()[base..base + plane]
                            .iter()
                            .map(|&x| (x - self.mean[ch]) * (x - self.mean[ch]))
                            .sum::<f32>();
                    }
                }
                for v in &mut self.var {
                    *v /= m;
                }
                self.inv_std.clear();
                self.inv_std
                    .extend(self.var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));

                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        let (mu, is, g, b) = (self.mean[ch], self.inv_std[ch], gamma[ch], beta[ch]);
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mu) * is;
                            self.x_hat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                }
                // Exponential running statistics (biased variance, as
                // documented in DESIGN.md).
                for ch in 0..c {
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * self.mean[ch];
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * self.var[ch];
                }
            }
            Mode::Eval => {
                self.inv_std.clear();
                self.inv_std.extend(
                    self.running_var
                        .data()
                        .iter()
                        .map(|&v| 1.0 / (v + self.eps).sqrt()),
                );
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        let mu = self.running_mean.data()[ch];
                        let (is, g, b) = (self.inv_std[ch], gamma[ch], beta[ch]);
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mu) * is;
                            self.x_hat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                }
            }
        }
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        self.mode = mode;
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("BatchNorm2d");
        }
        check_backward_shape("BatchNorm2d", &self.input_shape, grad_output.shape());
        let (n, c, h, w) = (
            self.input_shape[0],
            self.input_shape[1],
            self.input_shape[2],
            self.input_shape[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        resize_buffer(grad_input, grad_output.shape());

        // dγ and dβ are identical in both modes.
        self.dgamma.clear();
        self.dgamma.resize(c, 0.0);
        self.dbeta.clear();
        self.dbeta.resize(c, 0.0);
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    self.dgamma[ch] += grad_output.data()[i] * self.x_hat.data()[i];
                    self.dbeta[ch] += grad_output.data()[i];
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad_mut().data_mut()[ch] += self.dgamma[ch];
            self.beta.grad_mut().data_mut()[ch] += self.dbeta[ch];
        }

        let gamma = self.gamma.value().data();
        match self.mode {
            Mode::Train => {
                // dx = (γ·inv_std / m) · (m·g − Σg − x̂·Σ(g·x̂)) per channel.
                for img in 0..n {
                    for (ch, (&g_ch, &is)) in gamma.iter().zip(&self.inv_std).enumerate() {
                        let base = (img * c + ch) * plane;
                        let coeff = g_ch * is / m;
                        for i in base..base + plane {
                            grad_input.data_mut()[i] = coeff
                                * (m * grad_output.data()[i]
                                    - self.dbeta[ch]
                                    - self.x_hat.data()[i] * self.dgamma[ch]);
                        }
                    }
                }
            }
            Mode::Eval => {
                // Running statistics are constants: dx = g·γ·inv_std.
                for img in 0..n {
                    for (ch, (&g, &is)) in gamma.iter().zip(&self.inv_std).enumerate() {
                        let base = (img * c + ch) * plane;
                        let coeff = g * is;
                        for i in base..base + plane {
                            grad_input.data_mut()[i] = coeff * grad_output.data()[i];
                        }
                    }
                }
            }
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.x_hat.capacity()
            + self.mean.capacity()
            + self.var.capacity()
            + self.inv_std.capacity()
            + self.dgamma.capacity()
            + self.dbeta.capacity()
    }

    fn release_buffers(&mut self) {
        self.x_hat = Tensor::default();
        self.mean = Vec::new();
        self.var = Vec::new();
        self.inv_std = Vec::new();
        self.dgamma = Vec::new();
        self.dbeta = Vec::new();
        self.input_shape = Vec::new();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(self.gamma.value_mut());
        f(self.beta.value_mut());
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn train_mode_normalises_batch() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i % 13) as f32);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ≈ 0, var ≈ 1 after normalisation (γ=1, β=0).
        let plane = 9;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for img in 0..4 {
                let base = (img * 2 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        // Warm up running stats on a mean-10, variance-1 distribution.
        let x = Tensor::from_fn(&[8, 1, 2, 2], |i| if i % 2 == 0 { 9.0 } else { 11.0 });
        for _ in 0..100 {
            bn.forward(&x, Mode::Train);
        }
        assert!((bn.running_mean().data()[0] - 10.0).abs() < 0.05);
        assert!((bn.running_var().data()[0] - 1.0).abs() < 0.05);
        // Eval on the same input: output ≈ (x − 10) / 1 = ±1.
        let y = bn.forward(&x, Mode::Eval);
        for (i, &v) in y.data().iter().enumerate() {
            let expected = if i % 2 == 0 { -1.0 } else { 1.0 };
            assert!((v - expected).abs() < 0.1, "index {i}: {v}");
        }
    }

    #[test]
    fn train_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 19 % 11) as f32 - 5.0) * 0.4);
        gradcheck::check_input_gradient(&mut bn, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn eval_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        // Give the running stats some structure first.
        let warm = Tensor::from_fn(&[4, 2, 2, 2], |i| (i % 7) as f32);
        bn.forward(&warm, Mode::Train);
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 19 % 11) as f32 - 5.0) * 0.4);
        gradcheck::check_input_gradient(&mut bn, &x, Mode::Eval, 2e-2);
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 23 % 13) as f32 - 6.0) * 0.3);
        gradcheck::check_param_gradients(&mut bn, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn state_includes_running_buffers() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        let mut count = 0;
        bn.visit_state(&mut |_| count += 1);
        assert_eq!(count, 4, "gamma, beta, running_mean, running_var");
        let mut params = 0;
        bn.visit_params(&mut |_| params += 1);
        assert_eq!(params, 2, "only gamma and beta are trainable");
    }

    #[test]
    fn rejects_zero_channels() {
        assert!(BatchNorm2d::new(0).is_err());
    }

    #[test]
    #[should_panic(expected = "BatchNorm2d::backward called before forward")]
    fn backward_before_forward_panics() {
        BatchNorm2d::new(2)
            .unwrap()
            .backward(&Tensor::ones(&[1, 2, 1, 1]));
    }

    #[test]
    fn buffer_reuse_is_bit_identical_and_allocation_free() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[3, 2, 4, 4], |i| ((i * 13 % 11) as f32 - 5.0) * 0.2);
        let g = Tensor::from_fn(&[3, 2, 4, 4], |i| ((i * 7 % 5) as f32 - 2.0) * 0.1);
        // Same fresh-state forward/backward twice: identical bits. (The
        // layer is stateful through running statistics, so compare two
        // instances instead of repeated calls on one.)
        let mut bn2 = BatchNorm2d::new(2).unwrap();
        let (y1, dx1) = (bn.forward(&x, Mode::Train), bn.backward(&g));
        let (y2, dx2) = (bn2.forward(&x, Mode::Train), bn2.backward(&g));
        assert_eq!(y1, y2);
        assert_eq!(dx1, dx2);
        // Once warmed, repeated passes must not grow any buffer.
        let warmed = bn.buffer_capacity();
        for _ in 0..3 {
            bn.forward(&x, Mode::Train);
            bn.backward(&g);
            assert_eq!(bn.buffer_capacity(), warmed);
        }
    }
}
