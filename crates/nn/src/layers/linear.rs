//! Fully-connected (affine) layer.

use rand::rngs::StdRng;

use reveil_tensor::{ops, rng, Tensor};

use crate::{Layer, Mode, NnError, Param};

/// Affine map `y = x·Wᵀ + b` over a batch `x: [n, in_features]`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either feature count is zero.
    pub fn new(
        in_features: usize,
        out_features: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                what: "Linear",
                message: format!("features must be positive, got {in_features}x{out_features}"),
            });
        }
        let bound = (6.0 / in_features as f32).sqrt();
        let mut weight = Tensor::zeros(&[out_features, in_features]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        let bias = Tensor::zeros(&[out_features]);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_features,
            out_features,
            input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix, shape `[out_features, in_features]`.
    pub fn weight(&self) -> &Tensor {
        self.weight.value()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(
            input.shape().last(),
            Some(&self.in_features),
            "Linear expects trailing dim {}, got shape {:?}",
            self.in_features,
            input.shape()
        );
        assert_eq!(input.ndim(), 2, "Linear expects [n, features] input");
        self.input = Some(input.clone());
        let mut out = ops::matmul_nt(input, self.weight.value()).unwrap_or_else(|e| panic!("{e}"));
        ops::add_row(&mut out, self.bias.value()).unwrap_or_else(|e| panic!("{e}"));
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input
            .as_ref()
            .expect("Linear::backward before forward");
        // dW += gᵀ·x via the fused accumulate epilogue (no transient dW
        // tensor, no separate axpy), db += column sums of g, dx = g·W.
        ops::matmul_tn_acc_into(grad_output, input, 1.0, self.weight.grad_mut())
            .unwrap_or_else(|e| panic!("{e}"));
        let db = ops::sum_rows(grad_output).unwrap_or_else(|e| panic!("{e}"));
        self.bias
            .grad_mut()
            .axpy(1.0, &db)
            .unwrap_or_else(|e| panic!("{e}"));
        ops::matmul(grad_output, self.weight.value()).unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn make(in_f: usize, out_f: usize) -> Linear {
        let mut rng = rng::rng_from_seed(42);
        Linear::new(in_f, out_f, &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_features() {
        let mut rng = rng::rng_from_seed(0);
        assert!(Linear::new(0, 4, &mut rng).is_err());
        assert!(Linear::new(4, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = make(3, 2);
        // Zero weights: output equals bias.
        layer.weight.value_mut().fill_zero();
        layer
            .bias
            .value_mut()
            .data_mut()
            .copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::ones(&[4, 3]);
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 2]);
        for row in y.data().chunks(2) {
            assert_eq!(row, &[1.0, -1.0]);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut layer = make(5, 3);
        let x = Tensor::from_fn(&[4, 5], |i| ((i * 13 % 7) as f32 - 3.0) * 0.3);
        gradcheck::check_input_gradient(&mut layer, &x, Mode::Train, 1e-2);
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut layer = make(4, 3);
        let x = Tensor::from_fn(&[3, 4], |i| ((i * 11 % 9) as f32 - 4.0) * 0.25);
        gradcheck::check_param_gradients(&mut layer, &x, Mode::Train, 1e-2);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut layer = make(2, 2);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, Mode::Train);
        layer.backward(&g);
        let after_one: Vec<f32> = {
            let mut v = vec![];
            layer.visit_params(&mut |p| v.extend_from_slice(p.grad().data()));
            v
        };
        layer.forward(&x, Mode::Train);
        layer.backward(&g);
        let mut after_two = vec![];
        layer.visit_params(&mut |p| after_two.extend_from_slice(p.grad().data()));
        for (a, b) in after_one.iter().zip(&after_two) {
            assert!((b - 2.0 * a).abs() < 1e-5, "gradients must accumulate");
        }
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = make(8, 8);
        let b = make(8, 8);
        assert_eq!(a.weight().data(), b.weight().data());
    }
}
