//! Fully-connected (affine) layer.

use rand::rngs::StdRng;

use reveil_tensor::{ops, rng, Tensor};

use crate::layers::{backward_before_forward, check_backward_shape, resize_buffer};
use crate::{Layer, Mode, NnError, Param};

/// Affine map `y = x·Wᵀ + b` over a batch `x: [n, in_features]`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    /// Saved copy of the forward input, reused across calls.
    saved_input: Tensor,
    ready: bool,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either feature count is zero.
    pub fn new(
        in_features: usize,
        out_features: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                what: "Linear",
                message: format!("features must be positive, got {in_features}x{out_features}"),
            });
        }
        let bound = (6.0 / in_features as f32).sqrt();
        let mut weight = Tensor::zeros(&[out_features, in_features]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        let bias = Tensor::zeros(&[out_features]);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_features,
            out_features,
            saved_input: Tensor::default(),
            ready: false,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix, shape `[out_features, in_features]`.
    pub fn weight(&self) -> &Tensor {
        self.weight.value()
    }
}

impl Layer for Linear {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        assert_eq!(
            input.shape().last(),
            Some(&self.in_features),
            "Linear expects trailing dim {}, got shape {:?}",
            self.in_features,
            input.shape()
        );
        assert_eq!(input.ndim(), 2, "Linear expects [n, features] input");
        let n = input.shape()[0];
        resize_buffer(&mut self.saved_input, input.shape());
        self.saved_input.data_mut().copy_from_slice(input.data());
        self.ready = true;
        resize_buffer(out, &[n, self.out_features]);
        ops::matmul_nt_into(input, self.weight.value(), out).unwrap_or_else(|e| panic!("{e}"));
        ops::add_row(out, self.bias.value()).unwrap_or_else(|e| panic!("{e}"));
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Linear");
        }
        let n = self.saved_input.shape()[0];
        check_backward_shape("Linear", &[n, self.out_features], grad_output.shape());
        // dW += gᵀ·x via the fused accumulate epilogue (no transient dW
        // tensor, no separate axpy), db += column sums of g (accumulated
        // straight into the bias gradient), dx = g·W.
        ops::matmul_tn_acc_into(grad_output, &self.saved_input, 1.0, self.weight.grad_mut())
            .unwrap_or_else(|e| panic!("{e}"));
        {
            let db = self.bias.grad_mut().data_mut();
            for row in grad_output.data().chunks(db.len()) {
                for (o, &v) in db.iter_mut().zip(row) {
                    *o += v;
                }
            }
        }
        resize_buffer(grad_input, &[n, self.in_features]);
        ops::matmul_into(grad_output, self.weight.value(), grad_input)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn buffer_capacity(&self) -> usize {
        self.saved_input.capacity()
    }

    fn release_buffers(&mut self) {
        self.saved_input = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn make(in_f: usize, out_f: usize) -> Linear {
        let mut rng = rng::rng_from_seed(42);
        Linear::new(in_f, out_f, &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_features() {
        let mut rng = rng::rng_from_seed(0);
        assert!(Linear::new(0, 4, &mut rng).is_err());
        assert!(Linear::new(4, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = make(3, 2);
        // Zero weights: output equals bias.
        layer.weight.value_mut().fill_zero();
        layer
            .bias
            .value_mut()
            .data_mut()
            .copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::ones(&[4, 3]);
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 2]);
        for row in y.data().chunks(2) {
            assert_eq!(row, &[1.0, -1.0]);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut layer = make(5, 3);
        let x = Tensor::from_fn(&[4, 5], |i| ((i * 13 % 7) as f32 - 3.0) * 0.3);
        gradcheck::check_input_gradient(&mut layer, &x, Mode::Train, 1e-2);
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut layer = make(4, 3);
        let x = Tensor::from_fn(&[3, 4], |i| ((i * 11 % 9) as f32 - 4.0) * 0.25);
        gradcheck::check_param_gradients(&mut layer, &x, Mode::Train, 1e-2);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut layer = make(2, 2);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, Mode::Train);
        layer.backward(&g);
        let after_one: Vec<f32> = {
            let mut v = vec![];
            layer.visit_params(&mut |p| v.extend_from_slice(p.grad().data()));
            v
        };
        layer.forward(&x, Mode::Train);
        layer.backward(&g);
        let mut after_two = vec![];
        layer.visit_params(&mut |p| after_two.extend_from_slice(p.grad().data()));
        for (a, b) in after_one.iter().zip(&after_two) {
            assert!((b - 2.0 * a).abs() < 1e-5, "gradients must accumulate");
        }
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = make(8, 8);
        let b = make(8, 8);
        assert_eq!(a.weight().data(), b.weight().data());
    }

    #[test]
    #[should_panic(expected = "Linear::backward called before forward")]
    fn backward_before_forward_panics() {
        make(2, 2).backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn buffer_reuse_is_bit_identical_and_allocation_free() {
        let mut layer = make(6, 4);
        let x = Tensor::from_fn(&[5, 6], |i| ((i * 17 % 13) as f32 - 6.0) * 0.2);
        let g = Tensor::from_fn(&[5, 4], |i| ((i * 11 % 7) as f32 - 3.0) * 0.1);
        let mut out = Tensor::default();
        let mut dx = Tensor::default();
        layer.forward_into(&x, Mode::Train, &mut out);
        layer.backward_into(&g, &mut dx);
        let (first_out, first_dx) = (out.clone(), dx.clone());
        let warmed = layer.buffer_capacity();
        for _ in 0..3 {
            layer.forward_into(&x, Mode::Train, &mut out);
            layer.backward_into(&g, &mut dx);
            assert_eq!(out, first_out);
            assert_eq!(dx, first_dx);
            assert_eq!(layer.buffer_capacity(), warmed);
        }
    }
}
