//! Pooling layers: 2×2 max pooling and global average pooling.

use reveil_tensor::Tensor;

use crate::layers::{backward_before_forward, check_backward_shape, expect_nchw, resize_buffer};
use crate::{Layer, Mode, NnError, Param};

/// Max pooling over non-overlapping square windows.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    size: usize,
    input_shape: Vec<usize>,
    ready: bool,
    /// Flat input index of the winner for each output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `size × size` windows and stride
    /// `size`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `size` is zero.
    pub fn new(size: usize) -> Result<Self, NnError> {
        if size == 0 {
            return Err(NnError::InvalidConfig {
                what: "MaxPool2d",
                message: "window size must be positive".to_string(),
            });
        }
        Ok(Self {
            size,
            input_shape: Vec::new(),
            ready: false,
            argmax: Vec::new(),
        })
    }
}

impl Layer for MaxPool2d {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        let (n, c, h, w) = expect_nchw("MaxPool2d", input);
        let k = self.size;
        assert!(
            h % k == 0 && w % k == 0,
            "MaxPool2d::forward: spatial dims {h}x{w} must be divisible by the {k}x{k} window \
             — pad or crop the input at construction time"
        );
        let (oh, ow) = (h / k, w / k);
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        self.ready = true;
        resize_buffer(out, &[n, c, oh, ow]);
        self.argmax.clear();
        self.argmax.resize(n * c * oh * ow, 0);
        let src = input.data();
        let dst = out.data_mut();

        for img in 0..n {
            for ch in 0..c {
                let plane = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane + (oy * k) * w + ox * k;
                        let mut best = src[best_idx];
                        for dy in 0..k {
                            for dx in 0..k {
                                let idx = plane + (oy * k + dy) * w + (ox * k + dx);
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((img * c + ch) * oh + oy) * ow + ox;
                        dst[out_idx] = best;
                        self.argmax[out_idx] = best_idx;
                    }
                }
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("MaxPool2d");
        }
        assert_eq!(
            grad_output.len(),
            self.argmax.len(),
            "MaxPool2d::backward: gradient has {} elements but the last forward produced {} \
             — backward before forward, or shape drift between passes",
            grad_output.len(),
            self.argmax.len()
        );
        resize_buffer(grad_input, &self.input_shape);
        grad_input.fill_zero();
        let gi = grad_input.data_mut();
        for (out_idx, &in_idx) in self.argmax.iter().enumerate() {
            gi[in_idx] += grad_output.data()[out_idx];
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.argmax.capacity()
    }

    fn release_buffers(&mut self) {
        self.argmax = Vec::new();
        self.input_shape = Vec::new();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    input_shape: Vec<usize>,
    ready: bool,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        let (n, c, h, w) = expect_nchw("GlobalAvgPool", input);
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        self.ready = true;
        resize_buffer(out, &[n, c]);
        let inv = 1.0 / (h * w) as f32;
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let plane = (img * c + ch) * h * w;
                dst[img * c + ch] = src[plane..plane + h * w].iter().sum::<f32>() * inv;
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("GlobalAvgPool");
        }
        let (n, c, h, w) = (
            self.input_shape[0],
            self.input_shape[1],
            self.input_shape[2],
            self.input_shape[3],
        );
        check_backward_shape("GlobalAvgPool", &[n, c], grad_output.shape());
        let inv = 1.0 / (h * w) as f32;
        resize_buffer(grad_input, &self.input_shape);
        let gi = grad_input.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let g = grad_output.data()[img * c + ch] * inv;
                let plane = (img * c + ch) * h * w;
                for v in &mut gi[plane..plane + h * w] {
                    *v = g;
                }
            }
        }
    }

    fn release_buffers(&mut self) {
        self.input_shape = Vec::new();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        pool.forward(&x, Mode::Train);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradient_matches_finite_difference() {
        // Distinct values prevent argmax flips under the probe epsilon.
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| (i as f32) * 0.37);
        let mut pool = MaxPool2d::new(2).unwrap();
        gradcheck::check_input_gradient(&mut pool, &x, Mode::Train, 1e-2);
    }

    #[test]
    fn maxpool_rejects_zero_window() {
        assert!(MaxPool2d::new(0).is_err());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn maxpool_requires_divisible_dims() {
        let mut pool = MaxPool2d::new(2).unwrap();
        pool.forward(&Tensor::zeros(&[1, 1, 3, 3]), Mode::Train);
    }

    #[test]
    #[should_panic(expected = "expects an [n, c, h, w] input")]
    fn maxpool_rejects_wrong_rank_with_structured_message() {
        let mut pool = MaxPool2d::new(2).unwrap();
        pool.forward(&Tensor::zeros(&[4, 4]), Mode::Train);
    }

    #[test]
    #[should_panic(expected = "MaxPool2d::backward called before forward")]
    fn maxpool_backward_before_forward_panics() {
        MaxPool2d::new(2).unwrap().backward(&Tensor::ones(&[1]));
    }

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let y = gap.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
    }

    #[test]
    fn gap_gradient_matches_finite_difference() {
        let x = Tensor::from_fn(&[2, 3, 3, 3], |i| ((i * 7 % 5) as f32) * 0.2);
        gradcheck::check_input_gradient(&mut GlobalAvgPool::new(), &x, Mode::Train, 1e-2);
    }
}
