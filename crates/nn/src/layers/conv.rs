//! Standard and depthwise 2-D convolution layers.
//!
//! Convolutions are lowered to matrix products via
//! [`reveil_tensor::conv::im2col`]; the backward pass recomputes the column
//! matrix instead of caching it, trading a little compute for a large
//! reduction in peak memory (the cached tensor per layer is just the input).

use rand::rngs::StdRng;

use reveil_tensor::conv::{col2im, im2col, ConvGeometry};
use reveil_tensor::{ops, parallel, rng, Tensor};

use crate::{Layer, Mode, NnError, Param};

/// Standard 2-D convolution with square kernels and symmetric padding.
#[derive(Debug)]
pub struct Conv2d {
    /// Kernel matrix `[out_channels, in_channels * kh * kw]`.
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channel counts and
    /// propagates invalid kernel geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "Conv2d",
                message: format!("channels must be positive, got {in_channels}->{out_channels}"),
            });
        }
        let geom = ConvGeometry::new(kernel, kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let mut weight = Tensor::zeros(&[out_channels, fan_in]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geom,
            input: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize, usize, usize, usize) {
        let &[n, c, h, w] = input.shape() else {
            panic!("Conv2d expects [n, c, h, w], got {:?}", input.shape());
        };
        assert_eq!(
            c, self.in_channels,
            "Conv2d configured for {} input channels, got {c}",
            self.in_channels
        );
        let (oh, ow) = self
            .geom
            .output_size(h, w)
            .unwrap_or_else(|e| panic!("{e}"));
        (n, h, w, oh, ow)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (n, _h, _w, oh, ow) = self.check_input(input);
        self.input = Some(input.clone());
        let oc = self.out_channels;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let weight = self.weight.value();
        let bias = self.bias.value().data();
        let geom = self.geom;
        let sample_len = oc * oh * ow;

        parallel::for_each_chunk(out.data_mut(), sample_len, |start, chunk| {
            let sample = start / sample_len;
            let x = input.outer_slice(sample);
            let cols = im2col(&x, geom).unwrap_or_else(|e| panic!("{e}"));
            let y = ops::matmul(weight, &cols).unwrap_or_else(|e| panic!("{e}"));
            chunk.copy_from_slice(y.data());
            for ch in 0..oc {
                let b = bias[ch];
                for v in &mut chunk[ch * oh * ow..(ch + 1) * oh * ow] {
                    *v += b;
                }
            }
        });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("Conv2d::backward before forward");
        let (n, h, w, oh, ow) = self.check_input(input);
        assert_eq!(
            grad_output.shape(),
            &[n, self.out_channels, oh, ow],
            "Conv2d::backward gradient shape mismatch"
        );
        let geom = self.geom;
        let weight = self.weight.value().clone();
        let oc = self.out_channels;
        let c = self.in_channels;

        // Per-sample partials computed in parallel, reduced serially.
        struct SampleGrads {
            dx: Tensor,
            dw: Tensor,
            db: Tensor,
        }
        let mut partials: Vec<Option<SampleGrads>> = (0..n).map(|_| None).collect();
        parallel::for_each_chunk(&mut partials, 1, |sample, slot| {
            let x = input.outer_slice(sample);
            let cols = im2col(&x, geom).unwrap_or_else(|e| panic!("{e}"));
            let gy = grad_output
                .outer_slice(sample)
                .reshape(vec![oc, oh * ow])
                .unwrap_or_else(|e| panic!("{e}"));
            let dw = ops::matmul_nt(&gy, &cols).unwrap_or_else(|e| panic!("{e}"));
            let mut db = Tensor::zeros(&[oc]);
            for ch in 0..oc {
                db.data_mut()[ch] = gy.data()[ch * oh * ow..(ch + 1) * oh * ow].iter().sum();
            }
            let dcols = ops::matmul_tn(&weight, &gy).unwrap_or_else(|e| panic!("{e}"));
            let dx = col2im(&dcols, c, h, w, geom).unwrap_or_else(|e| panic!("{e}"));
            slot[0] = Some(SampleGrads { dx, dw, db });
        });

        let mut grad_input = Tensor::zeros(input.shape());
        for (sample, slot) in partials.into_iter().enumerate() {
            let g = slot.expect("sample gradient missing");
            grad_input
                .set_outer_slice(sample, &g.dx)
                .unwrap_or_else(|e| panic!("{e}"));
            self.weight.grad_mut().axpy(1.0, &g.dw).unwrap_or_else(|e| panic!("{e}"));
            self.bias.grad_mut().axpy(1.0, &g.db).unwrap_or_else(|e| panic!("{e}"));
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Depthwise 2-D convolution: one spatial filter per channel (MobileNetV2 /
/// EfficientNet building block).
#[derive(Debug)]
pub struct DepthwiseConv2d {
    /// Kernel matrix `[channels, kh * kw]`.
    weight: Param,
    bias: Param,
    channels: usize,
    geom: ConvGeometry,
    input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero channel count and
    /// propagates invalid kernel geometry.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "DepthwiseConv2d",
                message: "channels must be positive".to_string(),
            });
        }
        let geom = ConvGeometry::new(kernel, kernel, stride, padding)?;
        let fan_in = kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let mut weight = Tensor::zeros(&[channels, fan_in]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[channels])),
            channels,
            geom,
            input: None,
        })
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let &[n, c, h, w] = input.shape() else {
            panic!("DepthwiseConv2d expects [n, c, h, w], got {:?}", input.shape());
        };
        assert_eq!(c, self.channels, "DepthwiseConv2d channel mismatch");
        let (oh, ow) = self.geom.output_size(h, w).unwrap_or_else(|e| panic!("{e}"));
        self.input = Some(input.clone());
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let k2 = self.geom.kh * self.geom.kw;
        let weight = self.weight.value().data();
        let bias = self.bias.value().data();
        let geom = self.geom;
        let plane_len = oh * ow;

        parallel::for_each_chunk(out.data_mut(), c * plane_len, |start, chunk| {
            let sample = start / (c * plane_len);
            for ch in 0..c {
                let plane = input.outer_slice(sample).outer_slice(ch);
                let plane = plane.reshape(vec![1, h, w]).unwrap_or_else(|e| panic!("{e}"));
                let cols = im2col(&plane, geom).unwrap_or_else(|e| panic!("{e}"));
                let wrow = &weight[ch * k2..(ch + 1) * k2];
                let dst = &mut chunk[ch * plane_len..(ch + 1) * plane_len];
                for (q, o) in dst.iter_mut().enumerate() {
                    let mut acc = bias[ch];
                    for (t, &wv) in wrow.iter().enumerate() {
                        acc += wv * cols.data()[t * plane_len + q];
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input
            .as_ref()
            .expect("DepthwiseConv2d::backward before forward");
        let &[n, c, h, w] = input.shape() else { unreachable!() };
        let (oh, ow) = self.geom.output_size(h, w).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(grad_output.shape(), &[n, c, oh, ow], "gradient shape mismatch");
        let k2 = self.geom.kh * self.geom.kw;
        let plane_len = oh * ow;
        let mut grad_input = Tensor::zeros(input.shape());
        let weight = self.weight.value().data().to_vec();

        for sample in 0..n {
            for ch in 0..c {
                let plane = input
                    .outer_slice(sample)
                    .outer_slice(ch)
                    .reshape(vec![1, h, w])
                    .unwrap_or_else(|e| panic!("{e}"));
                let cols = im2col(&plane, self.geom).unwrap_or_else(|e| panic!("{e}"));
                let g_base = ((sample * c + ch) * oh) * ow;
                let g = &grad_output.data()[g_base..g_base + plane_len];

                // dW row: g · colsᵀ ; db: Σ g ; dcols: wᵀ ⊗ g.
                let dw_row = &mut self.weight.grad_mut().data_mut()[ch * k2..(ch + 1) * k2];
                for (t, dw) in dw_row.iter_mut().enumerate() {
                    let row = &cols.data()[t * plane_len..(t + 1) * plane_len];
                    *dw += row.iter().zip(g).map(|(&a, &b)| a * b).sum::<f32>();
                }
                self.bias.grad_mut().data_mut()[ch] += g.iter().sum::<f32>();

                let mut dcols = Tensor::zeros(&[k2, plane_len]);
                for t in 0..k2 {
                    let wv = weight[ch * k2 + t];
                    let dst = &mut dcols.data_mut()[t * plane_len..(t + 1) * plane_len];
                    for (o, &gv) in dst.iter_mut().zip(g) {
                        *o = wv * gv;
                    }
                }
                let dplane = col2im(&dcols, 1, h, w, self.geom).unwrap_or_else(|e| panic!("{e}"));
                let base = ((sample * c + ch) * h) * w;
                grad_input.data_mut()[base..base + h * w].copy_from_slice(dplane.data());
            }
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn seeded() -> StdRng {
        rng::rng_from_seed(7)
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut r = seeded();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut r).unwrap();
        conv.weight.value_mut().data_mut()[0] = 1.0;
        let x = Tensor::from_fn(&[2, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_output_shape_with_stride_and_padding() {
        let mut r = seeded();
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn conv_matches_hand_computed_example() {
        // 1 channel, 2x2 kernel of ones, no padding: output = window sums.
        let mut r = seeded();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r).unwrap();
        conv.weight.value_mut().data_mut().copy_from_slice(&[1.0; 4]);
        conv.bias.value_mut().data_mut()[0] = 0.5;
        let x =
            Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[10.5]);
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 23 % 17) as f32 - 8.0) * 0.1);
        gradcheck::check_input_gradient(&mut conv, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn conv_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 31 % 19) as f32 - 9.0) * 0.1);
        gradcheck::check_param_gradients(&mut conv, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn conv_rejects_bad_config() {
        let mut r = seeded();
        assert!(Conv2d::new(0, 4, 3, 1, 1, &mut r).is_err());
        assert!(Conv2d::new(4, 0, 3, 1, 1, &mut r).is_err());
        assert!(Conv2d::new(4, 4, 0, 1, 1, &mut r).is_err());
    }

    #[test]
    fn depthwise_applies_independent_filters() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(2, 1, 1, 0, &mut r).unwrap();
        dw.weight.value_mut().data_mut().copy_from_slice(&[2.0, 3.0]);
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = dw.forward(&x, Mode::Train);
        assert_eq!(&y.data()[..4], &[2.0; 4]);
        assert_eq!(&y.data()[4..], &[3.0; 4]);
    }

    #[test]
    fn depthwise_input_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| ((i * 29 % 23) as f32 - 11.0) * 0.1);
        gradcheck::check_input_gradient(&mut dw, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn depthwise_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(2, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 37 % 29) as f32 - 14.0) * 0.1);
        gradcheck::check_param_gradients(&mut dw, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn depthwise_stride_halves_spatial_dims() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(4, 3, 2, 1, &mut r).unwrap();
        let y = dw.forward(&Tensor::zeros(&[1, 4, 8, 8]), Mode::Train);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }
}
