//! Standard and depthwise 2-D convolution layers.
//!
//! Convolutions lower the whole mini-batch to one `[c*kh*kw, n*oh*ow]`
//! column matrix via [`reveil_tensor::conv::im2col_batch_into`] and run a
//! single packed matmul per layer call. All intermediate buffers live in a
//! per-layer [`ConvScratch`] that is reused across calls, so the forward
//! and backward hot loops perform no per-sample heap allocation. The
//! backward pass recomputes the column matrix instead of caching it,
//! trading a little compute for a large reduction in peak memory (the
//! cached tensor per layer is just the input).

use rand::rngs::StdRng;

use reveil_tensor::conv::{col2im_batch_into, im2col_batch_into, ConvGeometry};
use reveil_tensor::{ops, parallel, rng, Tensor};

use crate::layers::{backward_before_forward, check_backward_shape, expect_nchw, resize_buffer};
use crate::{Layer, Mode, NnError, Param};

/// Reusable workspace for the batched convolution lowering.
///
/// One instance lives inside each convolution layer; every buffer is
/// resized in place (growing at most once per shape change) and then reused
/// verbatim by subsequent calls, which keeps the training loop free of
/// per-sample and per-batch allocations.
#[derive(Debug, Default)]
pub struct ConvScratch {
    /// `[c*kh*kw, n*oh*ow]` column matrix (forward and backward).
    cols: Tensor,
    /// `[oc, n*oh*ow]` matmul output (forward) or gathered output gradient
    /// (backward).
    gemm: Tensor,
    /// `[c*kh*kw, n*oh*ow]` column-space gradient (backward).
    dcols: Tensor,
}

impl ConvScratch {
    /// Total capacity of the scratch buffers in elements (used by the
    /// reuse regression tests).
    pub fn capacity(&self) -> usize {
        self.cols.capacity() + self.gemm.capacity() + self.dcols.capacity()
    }
}

/// Standard 2-D convolution with square kernels and symmetric padding.
#[derive(Debug)]
pub struct Conv2d {
    /// Kernel matrix `[out_channels, in_channels * kh * kw]`.
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    /// Saved copy of the forward input, reused across calls.
    saved_input: Tensor,
    ready: bool,
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channel counts and
    /// propagates invalid kernel geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "Conv2d",
                message: format!("channels must be positive, got {in_channels}->{out_channels}"),
            });
        }
        let geom = ConvGeometry::new(kernel, kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let mut weight = Tensor::zeros(&[out_channels, fan_in]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geom,
            saved_input: Tensor::default(),
            ready: false,
            scratch: ConvScratch::default(),
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize, usize, usize, usize) {
        let (n, c, h, w) = expect_nchw("Conv2d", input);
        assert_eq!(
            c, self.in_channels,
            "Conv2d configured for {} input channels, got {c}",
            self.in_channels
        );
        let (oh, ow) = self
            .geom
            .output_size(h, w)
            .unwrap_or_else(|e| panic!("{e}"));
        (n, h, w, oh, ow)
    }
}

impl Layer for Conv2d {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        let (n, _h, _w, oh, ow) = self.check_input(input);
        resize_buffer(&mut self.saved_input, input.shape());
        self.saved_input.data_mut().copy_from_slice(input.data());
        self.ready = true;
        let oc = self.out_channels;
        let ohw = oh * ow;

        // One batched lowering + one packed matmul for the whole batch.
        im2col_batch_into(input, self.geom, &mut self.scratch.cols)
            .unwrap_or_else(|e| panic!("{e}"));
        resize_buffer(&mut self.scratch.gemm, &[oc, n * ohw]);
        ops::matmul_into(
            self.weight.value(),
            &self.scratch.cols,
            &mut self.scratch.gemm,
        )
        .unwrap_or_else(|e| panic!("{e}"));

        // Scatter [oc, n*ohw] into [n, oc, oh, ow] and add the bias.
        resize_buffer(out, &[n, oc, oh, ow]);
        let gemm = self.scratch.gemm.data();
        let bias = self.bias.value().data();
        let sample_len = oc * ohw;
        parallel::for_each_chunk(out.data_mut(), sample_len, |start, chunk| {
            let sample = start / sample_len;
            for ch in 0..oc {
                let src = &gemm[ch * n * ohw + sample * ohw..][..ohw];
                let dst = &mut chunk[ch * ohw..(ch + 1) * ohw];
                let b = bias[ch];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o = v + b;
                }
            }
        });
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Conv2d");
        }
        let input = &self.saved_input;
        let &[n, _c, h, w] = input.shape() else {
            unreachable!("saved input is always [n, c, h, w]")
        };
        let (oh, ow) = self
            .geom
            .output_size(h, w)
            .unwrap_or_else(|e| panic!("{e}"));
        check_backward_shape(
            "Conv2d",
            &[n, self.out_channels, oh, ow],
            grad_output.shape(),
        );
        let c = self.in_channels;
        let oc = self.out_channels;
        let ohw = oh * ow;
        let fan_in = c * self.geom.kh * self.geom.kw;

        // Recompute the batched column matrix (not cached across the pass).
        im2col_batch_into(input, self.geom, &mut self.scratch.cols)
            .unwrap_or_else(|e| panic!("{e}"));

        // Gather the output gradient from [n, oc, oh, ow] into the
        // channel-major [oc, n*ohw] layout the matmuls need.
        resize_buffer(&mut self.scratch.gemm, &[oc, n * ohw]);
        {
            let go = grad_output.data();
            let rows_per_chunk = oc.div_ceil(parallel::worker_count()).max(1);
            parallel::for_each_chunk(
                self.scratch.gemm.data_mut(),
                rows_per_chunk * n * ohw,
                |start, rows| {
                    let ch0 = start / (n * ohw);
                    for (local, row) in rows.chunks_mut(n * ohw).enumerate() {
                        let ch = ch0 + local;
                        for s in 0..n {
                            row[s * ohw..(s + 1) * ohw]
                                .copy_from_slice(&go[(s * oc + ch) * ohw..][..ohw]);
                        }
                    }
                },
            );
        }

        // dW += gy · colsᵀ: one matmul for the whole batch, accumulated
        // straight into the parameter gradient by the fused GEMM epilogue
        // (no per-call weight-gradient scratch, no separate axpy pass).
        debug_assert_eq!(self.weight.grad().shape(), &[oc, fan_in]);
        ops::matmul_nt_acc_into(
            &self.scratch.gemm,
            &self.scratch.cols,
            1.0,
            self.weight.grad_mut(),
        )
        .unwrap_or_else(|e| panic!("{e}"));

        // db += row sums of gy.
        {
            let gy = self.scratch.gemm.data();
            let db = self.bias.grad_mut().data_mut();
            for ch in 0..oc {
                db[ch] += gy[ch * n * ohw..(ch + 1) * n * ohw].iter().sum::<f32>();
            }
        }

        // dcols = Wᵀ · gy, scattered back to input space batched.
        resize_buffer(&mut self.scratch.dcols, &[fan_in, n * ohw]);
        ops::matmul_tn_into(
            self.weight.value(),
            &self.scratch.gemm,
            &mut self.scratch.dcols,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        col2im_batch_into(&self.scratch.dcols, n, c, h, w, self.geom, grad_input)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn buffer_capacity(&self) -> usize {
        self.scratch.capacity() + self.saved_input.capacity()
    }

    fn release_buffers(&mut self) {
        self.scratch = ConvScratch::default();
        self.saved_input = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Depthwise 2-D convolution: one spatial filter per channel (MobileNetV2 /
/// EfficientNet building block).
#[derive(Debug)]
pub struct DepthwiseConv2d {
    /// Kernel matrix `[channels, kh * kw]`.
    weight: Param,
    bias: Param,
    channels: usize,
    geom: ConvGeometry,
    /// Saved copy of the forward input, reused across calls.
    saved_input: Tensor,
    ready: bool,
    scratch: ConvScratch,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero channel count and
    /// propagates invalid kernel geometry.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "DepthwiseConv2d",
                message: "channels must be positive".to_string(),
            });
        }
        let geom = ConvGeometry::new(kernel, kernel, stride, padding)?;
        let fan_in = kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let mut weight = Tensor::zeros(&[channels, fan_in]);
        rng::fill_uniform(&mut weight, -bound, bound, init_rng);
        Ok(Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[channels])),
            channels,
            geom,
            saved_input: Tensor::default(),
            ready: false,
            scratch: ConvScratch::default(),
        })
    }
}

impl Layer for DepthwiseConv2d {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        let (n, c, h, w) = expect_nchw("DepthwiseConv2d", input);
        assert_eq!(
            c, self.channels,
            "DepthwiseConv2d::forward configured for {} channels, got {c}",
            self.channels
        );
        let (oh, ow) = self
            .geom
            .output_size(h, w)
            .unwrap_or_else(|e| panic!("{e}"));
        resize_buffer(&mut self.saved_input, input.shape());
        self.saved_input.data_mut().copy_from_slice(input.data());
        self.ready = true;
        let k2 = self.geom.kh * self.geom.kw;
        let ohw = oh * ow;

        // One batched lowering shared by every channel's filter.
        im2col_batch_into(input, self.geom, &mut self.scratch.cols)
            .unwrap_or_else(|e| panic!("{e}"));
        let cols = self.scratch.cols.data();
        let weight = self.weight.value().data();
        let bias = self.bias.value().data();

        resize_buffer(out, &[n, c, oh, ow]);
        let sample_len = c * ohw;
        parallel::for_each_chunk(out.data_mut(), sample_len, |start, chunk| {
            let sample = start / sample_len;
            for ch in 0..c {
                let dst = &mut chunk[ch * ohw..(ch + 1) * ohw];
                dst.fill(bias[ch]);
                for t in 0..k2 {
                    let wv = weight[ch * k2 + t];
                    let src = &cols[(ch * k2 + t) * n * ohw + sample * ohw..][..ohw];
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += wv * v;
                    }
                }
            }
        });
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("DepthwiseConv2d");
        }
        let input = &self.saved_input;
        let &[n, c, h, w] = input.shape() else {
            unreachable!("saved input is always [n, c, h, w]")
        };
        let (oh, ow) = self
            .geom
            .output_size(h, w)
            .unwrap_or_else(|e| panic!("{e}"));
        check_backward_shape("DepthwiseConv2d", &[n, c, oh, ow], grad_output.shape());
        let k2 = self.geom.kh * self.geom.kw;
        let ohw = oh * ow;

        im2col_batch_into(input, self.geom, &mut self.scratch.cols)
            .unwrap_or_else(|e| panic!("{e}"));

        // Gather the output gradient into channel-major [c, n*ohw] rows.
        resize_buffer(&mut self.scratch.gemm, &[c, n * ohw]);
        {
            let go = grad_output.data();
            let gy = self.scratch.gemm.data_mut();
            for ch in 0..c {
                for s in 0..n {
                    gy[ch * n * ohw + s * ohw..ch * n * ohw + (s + 1) * ohw]
                        .copy_from_slice(&go[(s * c + ch) * ohw..][..ohw]);
                }
            }
        }

        // dW[ch][t] += <gy[ch], cols[ch*k2+t]>, db[ch] += Σ gy[ch]: straight
        // dot products over contiguous rows.
        {
            let cols = self.scratch.cols.data();
            let gy = self.scratch.gemm.data();
            let dw = self.weight.grad_mut().data_mut();
            for ch in 0..c {
                let g = &gy[ch * n * ohw..(ch + 1) * n * ohw];
                for t in 0..k2 {
                    let row = &cols[(ch * k2 + t) * n * ohw..][..n * ohw];
                    dw[ch * k2 + t] += row.iter().zip(g).map(|(&a, &b)| a * b).sum::<f32>();
                }
            }
            let db = self.bias.grad_mut().data_mut();
            for ch in 0..c {
                db[ch] += gy[ch * n * ohw..(ch + 1) * n * ohw].iter().sum::<f32>();
            }
        }

        // dcols[ch*k2+t] = w[ch][t] * gy[ch], scattered back batched.
        resize_buffer(&mut self.scratch.dcols, &[c * k2, n * ohw]);
        {
            let gy = self.scratch.gemm.data();
            let weight = self.weight.value().data();
            let rows_per_chunk = (c * k2).div_ceil(parallel::worker_count()).max(1);
            parallel::for_each_chunk(
                self.scratch.dcols.data_mut(),
                rows_per_chunk * n * ohw,
                |start, rows| {
                    let row0 = start / (n * ohw);
                    for (local, dst) in rows.chunks_mut(n * ohw).enumerate() {
                        let row = row0 + local;
                        let wv = weight[row];
                        let g = &gy[(row / k2) * n * ohw..][..n * ohw];
                        for (o, &v) in dst.iter_mut().zip(g) {
                            *o = wv * v;
                        }
                    }
                },
            );
        }
        col2im_batch_into(&self.scratch.dcols, n, c, h, w, self.geom, grad_input)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn buffer_capacity(&self) -> usize {
        self.scratch.capacity() + self.saved_input.capacity()
    }

    fn release_buffers(&mut self) {
        self.scratch = ConvScratch::default();
        self.saved_input = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn seeded() -> StdRng {
        rng::rng_from_seed(7)
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut r = seeded();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut r).unwrap();
        conv.weight.value_mut().data_mut()[0] = 1.0;
        let x = Tensor::from_fn(&[2, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_output_shape_with_stride_and_padding() {
        let mut r = seeded();
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn conv_matches_hand_computed_example() {
        // 1 channel, 2x2 kernel of ones, no padding: output = window sums.
        let mut r = seeded();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r).unwrap();
        conv.weight
            .value_mut()
            .data_mut()
            .copy_from_slice(&[1.0; 4]);
        conv.bias.value_mut().data_mut()[0] = 0.5;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[10.5]);
    }

    /// Naive per-sample, per-tap convolution used to validate the batched
    /// im2col + packed-matmul path.
    fn naive_conv_forward(
        conv_weight: &Tensor,
        bias: &Tensor,
        x: &Tensor,
        geom: ConvGeometry,
    ) -> Tensor {
        let &[n, c, h, w] = x.shape() else {
            panic!("rank-4 input")
        };
        let (oh, ow) = geom.output_size(h, w).unwrap();
        let oc = conv_weight.shape()[0];
        let k2 = geom.kh * geom.kw;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[o];
                        for ch in 0..c {
                            for ky in 0..geom.kh {
                                for kx in 0..geom.kw {
                                    let iy =
                                        (oy * geom.stride + ky) as isize - geom.padding as isize;
                                    let ix =
                                        (ox * geom.stride + kx) as isize - geom.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += conv_weight.data()
                                        [o * c * k2 + (ch * geom.kh + ky) * geom.kw + kx]
                                        * x.at(&[s, ch, iy as usize, ix as usize]);
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn batched_conv_matches_naive_reference() {
        // Odd, tile-unaligned shapes: 5 samples, 3->7 channels, 5x7 input.
        let mut r = seeded();
        let mut conv = Conv2d::new(3, 7, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[5, 3, 5, 7], |i| ((i * 23 % 19) as f32 - 9.0) * 0.1);
        let fast = conv.forward(&x, Mode::Train);
        let slow = naive_conv_forward(conv.weight.value(), conv.bias.value(), &x, conv.geom);
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_scratch_reuse_is_bit_identical_and_allocation_free() {
        let mut r = seeded();
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[3, 2, 6, 6], |i| ((i * 13 % 11) as f32 - 5.0) * 0.1);
        let g = Tensor::from_fn(&[3, 4, 6, 6], |i| ((i * 7 % 5) as f32 - 2.0) * 0.1);

        // Warm up the scratch buffers once.
        let first_y = conv.forward(&x, Mode::Train);
        let first_dx = conv.backward(&g);
        let warmed_capacity = conv.scratch.capacity();

        // Every subsequent call must reuse the same allocations and
        // reproduce the exact same bits.
        for _ in 0..3 {
            let y = conv.forward(&x, Mode::Train);
            let dx = conv.backward(&g);
            assert_eq!(y, first_y, "forward must be bit-identical across reuse");
            assert_eq!(dx, first_dx, "backward must be bit-identical across reuse");
            assert_eq!(
                conv.scratch.capacity(),
                warmed_capacity,
                "scratch must not reallocate once warmed"
            );
        }
    }

    #[test]
    fn depthwise_scratch_reuse_is_bit_identical_and_allocation_free() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 3, 5, 5], |i| ((i * 17 % 13) as f32 - 6.0) * 0.1);
        let g = Tensor::from_fn(&[2, 3, 5, 5], |i| ((i * 11 % 7) as f32 - 3.0) * 0.1);

        let first_y = dw.forward(&x, Mode::Train);
        let first_dx = dw.backward(&g);
        let warmed_capacity = dw.scratch.capacity();
        for _ in 0..3 {
            assert_eq!(dw.forward(&x, Mode::Train), first_y);
            assert_eq!(dw.backward(&g), first_dx);
            assert_eq!(dw.scratch.capacity(), warmed_capacity);
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 23 % 17) as f32 - 8.0) * 0.1);
        gradcheck::check_input_gradient(&mut conv, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn conv_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 31 % 19) as f32 - 9.0) * 0.1);
        gradcheck::check_param_gradients(&mut conv, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn conv_rejects_bad_config() {
        let mut r = seeded();
        assert!(Conv2d::new(0, 4, 3, 1, 1, &mut r).is_err());
        assert!(Conv2d::new(4, 0, 3, 1, 1, &mut r).is_err());
        assert!(Conv2d::new(4, 4, 0, 1, 1, &mut r).is_err());
    }

    #[test]
    fn depthwise_applies_independent_filters() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(2, 1, 1, 0, &mut r).unwrap();
        dw.weight
            .value_mut()
            .data_mut()
            .copy_from_slice(&[2.0, 3.0]);
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = dw.forward(&x, Mode::Train);
        assert_eq!(&y.data()[..4], &[2.0; 4]);
        assert_eq!(&y.data()[4..], &[3.0; 4]);
    }

    #[test]
    fn depthwise_input_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| ((i * 29 % 23) as f32 - 11.0) * 0.1);
        gradcheck::check_input_gradient(&mut dw, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn depthwise_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(2, 3, 2, 1, &mut r).unwrap();
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 37 % 29) as f32 - 14.0) * 0.1);
        gradcheck::check_param_gradients(&mut dw, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn depthwise_stride_halves_spatial_dims() {
        let mut r = seeded();
        let mut dw = DepthwiseConv2d::new(4, 3, 2, 1, &mut r).unwrap();
        let y = dw.forward(&Tensor::zeros(&[1, 4, 8, 8]), Mode::Train);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }
}
