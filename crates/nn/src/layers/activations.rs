//! Pointwise activation layers: ReLU, ReLU6, SiLU and Sigmoid.
//!
//! Every activation keeps exactly one reusable buffer between forward and
//! backward — a 0/1 gradient mask for the ReLU family (computed in the same
//! pass that writes the output, so the input is never cloned) or a saved
//! copy of the input/output for SiLU/Sigmoid — which halves the memory
//! traffic of the old clone-the-input pattern and makes both passes
//! allocation-free once warmed up.

use reveil_tensor::Tensor;

use crate::layers::{backward_before_forward, check_backward_shape, resize_buffer};
use crate::{Layer, Mode, Param};

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Debug, Default, Clone)]
pub struct Relu {
    /// 1.0 where the input was positive, 0.0 elsewhere.
    mask: Tensor,
    ready: bool,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        resize_buffer(out, input.shape());
        resize_buffer(&mut self.mask, input.shape());
        let dst = out.data_mut();
        let mask = self.mask.data_mut();
        for ((o, m), &x) in dst.iter_mut().zip(mask.iter_mut()).zip(input.data()) {
            *o = x.max(0.0);
            *m = if x > 0.0 { 1.0 } else { 0.0 };
        }
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Relu");
        }
        check_backward_shape("Relu", self.mask.shape(), grad_output.shape());
        resize_buffer(grad_input, grad_output.shape());
        let dst = grad_input.data_mut();
        for ((gi, &m), &g) in dst.iter_mut().zip(self.mask.data()).zip(grad_output.data()) {
            *gi = if m != 0.0 { g } else { 0.0 };
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.mask.capacity()
    }

    fn release_buffers(&mut self) {
        self.mask = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// ReLU capped at 6, `y = min(max(x, 0), 6)` — MobileNetV2's activation.
#[derive(Debug, Default, Clone)]
pub struct Relu6 {
    /// 1.0 in the linear region `0 < x < 6`, 0.0 in both saturations.
    mask: Tensor,
    ready: bool,
}

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu6 {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        resize_buffer(out, input.shape());
        resize_buffer(&mut self.mask, input.shape());
        let dst = out.data_mut();
        let mask = self.mask.data_mut();
        for ((o, m), &x) in dst.iter_mut().zip(mask.iter_mut()).zip(input.data()) {
            *o = x.clamp(0.0, 6.0);
            *m = if x > 0.0 && x < 6.0 { 1.0 } else { 0.0 };
        }
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Relu6");
        }
        check_backward_shape("Relu6", self.mask.shape(), grad_output.shape());
        resize_buffer(grad_input, grad_output.shape());
        let dst = grad_input.data_mut();
        for ((gi, &m), &g) in dst.iter_mut().zip(self.mask.data()).zip(grad_output.data()) {
            *gi = if m != 0.0 { g } else { 0.0 };
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.mask.capacity()
    }

    fn release_buffers(&mut self) {
        self.mask = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu6"
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Sigmoid-weighted linear unit (swish), `y = x·σ(x)` — EfficientNet's
/// activation.
#[derive(Debug, Default, Clone)]
pub struct Silu {
    /// Saved copy of the forward input (the derivative needs `x` itself).
    saved_input: Tensor,
    ready: bool,
}

impl Silu {
    /// Creates a SiLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Silu {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        resize_buffer(out, input.shape());
        resize_buffer(&mut self.saved_input, input.shape());
        self.saved_input.data_mut().copy_from_slice(input.data());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = x * sigmoid(x);
        }
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Silu");
        }
        check_backward_shape("Silu", self.saved_input.shape(), grad_output.shape());
        resize_buffer(grad_input, grad_output.shape());
        let dst = grad_input.data_mut();
        for ((gi, &x), &g) in dst
            .iter_mut()
            .zip(self.saved_input.data())
            .zip(grad_output.data())
        {
            let s = sigmoid(x);
            *gi = g * (s + x * s * (1.0 - s));
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.saved_input.capacity()
    }

    fn release_buffers(&mut self) {
        self.saved_input = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "silu"
    }
}

/// Logistic sigmoid, `y = 1 / (1 + e^{-x})`.
#[derive(Debug, Default, Clone)]
pub struct Sigmoid {
    /// Saved copy of the forward output (the derivative is `y(1-y)`).
    saved_output: Tensor,
    ready: bool,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        resize_buffer(out, input.shape());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = sigmoid(x);
        }
        resize_buffer(&mut self.saved_output, input.shape());
        self.saved_output.data_mut().copy_from_slice(out.data());
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Sigmoid");
        }
        check_backward_shape("Sigmoid", self.saved_output.shape(), grad_output.shape());
        resize_buffer(grad_input, grad_output.shape());
        let dst = grad_input.data_mut();
        for ((gi, &y), &g) in dst
            .iter_mut()
            .zip(self.saved_output.data())
            .zip(grad_output.data())
        {
            *gi = g * y * (1.0 - y);
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.saved_output.capacity()
    }

    fn release_buffers(&mut self) {
        self.saved_output = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn probe_input() -> Tensor {
        // Offset keeps probes away from the ReLU kink at exactly 0.
        Tensor::from_fn(&[2, 3, 4], |i| ((i * 17 % 13) as f32 - 6.0) * 0.5 + 0.07)
    }

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = Relu::new();
        let out = relu.forward(&probe_input(), Mode::Train);
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn relu_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Relu::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn relu6_saturates_both_sides() {
        let mut relu6 = Relu6::new();
        let input = Tensor::from_vec(vec![3], vec![-1.0, 3.0, 10.0]).unwrap();
        let out = relu6.forward(&input, Mode::Train);
        assert_eq!(out.data(), &[0.0, 3.0, 6.0]);
        // Gradient is zero in both saturated regions.
        let g = relu6.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu6_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Relu6::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn silu_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Silu::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Sigmoid::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn sigmoid_range() {
        let mut s = Sigmoid::new();
        let out = s.forward(&probe_input(), Mode::Eval);
        assert!(out.data().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn activations_have_no_params() {
        let mut count = 0;
        Relu::new().visit_params(&mut |_| count += 1);
        Silu::new().visit_params(&mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics_with_shared_message() {
        Relu::new().backward(&Tensor::ones(&[3]));
    }

    #[test]
    #[should_panic(expected = "shape drift")]
    fn backward_shape_mismatch_panics_with_shared_message() {
        let mut silu = Silu::new();
        silu.forward(&probe_input(), Mode::Train);
        silu.backward(&Tensor::ones(&[5]));
    }

    #[test]
    fn forward_into_reuse_is_bit_identical_and_allocation_free() {
        let x = probe_input();
        let g = Tensor::from_fn(&[2, 3, 4], |i| ((i * 7 % 5) as f32 - 2.0) * 0.3);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Relu::new()),
            Box::new(Relu6::new()),
            Box::new(Silu::new()),
            Box::new(Sigmoid::new()),
        ];
        for mut layer in layers {
            let mut out = Tensor::default();
            let mut grad = Tensor::default();
            layer.forward_into(&x, Mode::Train, &mut out);
            layer.backward_into(&g, &mut grad);
            let (first_out, first_grad) = (out.clone(), grad.clone());
            let warmed = layer.buffer_capacity();
            for _ in 0..3 {
                layer.forward_into(&x, Mode::Train, &mut out);
                layer.backward_into(&g, &mut grad);
                assert_eq!(out, first_out, "{} forward drifted", layer.name());
                assert_eq!(grad, first_grad, "{} backward drifted", layer.name());
                assert_eq!(
                    layer.buffer_capacity(),
                    warmed,
                    "{} buffers must not grow once warmed",
                    layer.name()
                );
            }
        }
    }
}
