//! Pointwise activation layers: ReLU, ReLU6, SiLU and Sigmoid.

use reveil_tensor::Tensor;

use crate::{Layer, Mode, Param};

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Debug, Default, Clone)]
pub struct Relu {
    input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("Relu::backward before forward");
        input
            .zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// ReLU capped at 6, `y = min(max(x, 0), 6)` — MobileNetV2's activation.
#[derive(Debug, Default, Clone)]
pub struct Relu6 {
    input: Option<Tensor>,
}

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu6 {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input = Some(input.clone());
        input.map(|v| v.clamp(0.0, 6.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("Relu6::backward before forward");
        input
            .zip_map(grad_output, |x, g| if x > 0.0 && x < 6.0 { g } else { 0.0 })
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu6"
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Sigmoid-weighted linear unit (swish), `y = x·σ(x)` — EfficientNet's
/// activation.
#[derive(Debug, Default, Clone)]
pub struct Silu {
    input: Option<Tensor>,
}

impl Silu {
    /// Creates a SiLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Silu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input = Some(input.clone());
        input.map(|v| v * sigmoid(v))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("Silu::backward before forward");
        input
            .zip_map(grad_output, |x, g| {
                let s = sigmoid(x);
                g * (s + x * s * (1.0 - s))
            })
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "silu"
    }
}

/// Logistic sigmoid, `y = 1 / (1 + e^{-x})`.
#[derive(Debug, Default, Clone)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(sigmoid);
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .output
            .as_ref()
            .expect("Sigmoid::backward before forward");
        out.zip_map(grad_output, |y, g| g * y * (1.0 - y))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn probe_input() -> Tensor {
        // Offset keeps probes away from the ReLU kink at exactly 0.
        Tensor::from_fn(&[2, 3, 4], |i| ((i * 17 % 13) as f32 - 6.0) * 0.5 + 0.07)
    }

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = Relu::new();
        let out = relu.forward(&probe_input(), Mode::Train);
        assert!(out.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn relu_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Relu::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn relu6_saturates_both_sides() {
        let mut relu6 = Relu6::new();
        let input = Tensor::from_vec(vec![3], vec![-1.0, 3.0, 10.0]).unwrap();
        let out = relu6.forward(&input, Mode::Train);
        assert_eq!(out.data(), &[0.0, 3.0, 6.0]);
        // Gradient is zero in both saturated regions.
        let g = relu6.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu6_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Relu6::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn silu_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Silu::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        gradcheck::check_input_gradient(&mut Sigmoid::new(), &probe_input(), Mode::Train, 1e-2);
    }

    #[test]
    fn sigmoid_range() {
        let mut s = Sigmoid::new();
        let out = s.forward(&probe_input(), Mode::Eval);
        assert!(out.data().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn activations_have_no_params() {
        let mut count = 0;
        Relu::new().visit_params(&mut |_| count += 1);
        Silu::new().visit_params(&mut |_| count += 1);
        assert_eq!(count, 0);
    }
}
