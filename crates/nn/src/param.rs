use std::sync::atomic::{AtomicU64, Ordering};

use reveil_tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// A trainable parameter: value, accumulated gradient, and a process-unique
/// identity used by optimizers to key their per-parameter state.
#[derive(Debug, Clone)]
pub struct Param {
    id: u64,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Wraps an initial value as a trainable parameter with a zeroed
    /// gradient and a fresh identity.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad,
        }
    }

    /// Process-unique identity (stable for the parameter's lifetime, fresh
    /// after cloning a network via state round-trip, unchanged by value
    /// updates).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value (used by optimizers and checkpoint restore).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient (layers accumulate into this during backward).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Simultaneous mutable value and shared gradient, for optimizer
    /// kernels that sweep `(value, grad, state)` in one fused in-place pass
    /// without cloning either tensor.
    pub fn value_and_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        (&mut self.value, &self.grad)
    }

    /// Resets the gradient to zero, keeping the allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalars in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for a real layer).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Param::new(Tensor::zeros(&[2]));
        let b = Param::new(Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn grad_matches_value_shape_and_zeroes() {
        let mut p = Param::new(Tensor::ones(&[3, 4]));
        assert_eq!(p.grad().shape(), &[3, 4]);
        p.grad_mut().data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad().data()[0], 0.0);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
    }
}
