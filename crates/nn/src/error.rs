use std::error::Error;
use std::fmt;

/// Error type for fallible network-construction and training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer or model was configured with invalid hyper-parameters.
    InvalidConfig {
        /// Component being configured.
        what: &'static str,
        /// Description of the violated requirement.
        message: String,
    },
    /// A serialized state vector does not match the network's parameters.
    StateMismatch {
        /// Number of scalars the network expected.
        expected: usize,
        /// Number of scalars provided.
        got: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(reveil_tensor::TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidConfig { what, message } => {
                write!(f, "invalid {what} configuration: {message}")
            }
            NnError::StateMismatch { expected, got } => {
                write!(
                    f,
                    "state vector length mismatch: expected {expected} scalars, got {got}"
                )
            }
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reveil_tensor::TensorError> for NnError {
    fn from(e: reveil_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::StateMismatch {
            expected: 10,
            got: 4,
        };
        assert!(e.to_string().contains("10"));
        let t = NnError::from(reveil_tensor::TensorError::InvalidArgument {
            op: "x",
            message: "bad".into(),
        });
        assert!(t.source().is_some());
    }
}
