//! Classification metrics.

/// Fraction of predictions equal to their label (0.0 for empty input).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions/labels length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

/// Confusion matrix `m[true][pred]` over `num_classes`.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range entries.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions/labels length mismatch"
    );
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(
            p < num_classes && l < num_classes,
            "class index out of range"
        );
        m[l][p] += 1;
    }
    m
}

/// Per-class recall (diagonal over row sums); classes with no samples get
/// `None`.
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<Option<f32>> {
    confusion
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                None
            } else {
                Some(row[i] as f32 / total as f32)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_and_recall() {
        let preds = [0, 0, 1, 1, 1];
        let labels = [0, 1, 1, 1, 0];
        let m = confusion_matrix(&preds, &labels, 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 2);
        let recall = per_class_recall(&m);
        assert_eq!(recall[0], Some(0.5));
        assert_eq!(recall[1], Some(2.0 / 3.0));
        assert_eq!(recall[2], None);
    }
}
