//! Integration tests asserting the qualitative shape of the paper's
//! experiments at Smoke scale through the harness API.

use reveil::datasets::DatasetKind;
use reveil::eval::{fig5, table1, Profile, ScenarioCache, ScenarioSpec};
use reveil::triggers::TriggerKind;

#[test]
fn table2_shape_camouflage_halves_asr_keeps_ba() {
    let profile = Profile::Smoke;
    let kind = DatasetKind::Cifar10Like;
    // Two representative attacks to bound runtime.
    for trigger in [TriggerKind::BadNets, TriggerKind::FTrojan] {
        let spec = ScenarioSpec::new(profile, kind, trigger)
            .with_sigma(1e-3)
            .with_seed(2025);
        let poison = spec.with_cr(0.0).train().expect("poison cell");
        let camo = spec.with_cr(5.0).train().expect("camouflage cell");
        assert!(
            poison.result.asr > 50.0,
            "{trigger}: poisoning must implant (ASR {})",
            poison.result.asr
        );
        assert!(
            camo.result.asr < poison.result.asr * 0.5,
            "{trigger}: camouflage must at least halve ASR ({} -> {})",
            poison.result.asr,
            camo.result.asr
        );
        assert!(
            (poison.result.ba - camo.result.ba).abs() < 15.0,
            "{trigger}: BA must stay stable ({} vs {})",
            poison.result.ba,
            camo.result.ba
        );
    }
}

#[test]
fn fig5_shape_unlearning_restores() {
    let cache = ScenarioCache::new();
    let result =
        fig5::run(&cache, Profile::Smoke, &[DatasetKind::Cifar10Like], 2025).expect("fig5 trios");
    assert_eq!(result.len(), 1);
    assert_eq!(cache.trio_trainings(), 4, "one trio per attack");
    // A1 (BadNets) must show the full concealment-restoration shape.
    assert!(
        result[0].has_restoration_shape(0),
        "A1 trio: {:?}",
        result[0].trios[0]
    );
}

#[test]
fn table1_claims_hold() {
    // The harness's encoded Table I preserves the paper's headline claim.
    let table = table1::table1();
    assert_eq!(table.len(), 17);
    let text = table.render();
    assert!(text.contains("ReVeil [Ours]"));
}

#[test]
fn cross_dataset_smoke_camouflage_works_everywhere() {
    let profile = Profile::Smoke;
    for kind in DatasetKind::ALL {
        let spec = ScenarioSpec::new(profile, kind, TriggerKind::BadNets)
            .with_sigma(1e-3)
            .with_seed(7);
        let poison = spec.with_cr(0.0).train().expect("poison cell");
        let camo = spec.with_cr(5.0).train().expect("camouflage cell");
        assert!(
            camo.result.asr <= poison.result.asr,
            "{kind}: camouflage must not raise ASR ({} -> {})",
            poison.result.asr,
            camo.result.asr
        );
        assert!(
            poison.result.ba > 60.0,
            "{kind}: model must learn (BA {})",
            poison.result.ba
        );
    }
}
