//! Workspace-level integration test: the complete ReVeil lifecycle through
//! the umbrella crate's public API, asserting the paper's headline shape.

use reveil::attack::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil::datasets::{DatasetKind, SyntheticConfig};
use reveil::nn::models;
use reveil::nn::train::TrainConfig;
use reveil::triggers::TriggerKind;
use reveil::unlearn::{SisaConfig, SisaEnsemble};

#[test]
fn four_stage_lifecycle_conceals_then_restores() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(60, 15)
        .with_seed(101)
        .generate();

    let attack = ReveilAttack::new(
        AttackConfig::new(0)
            .with_poison_ratio(0.1)
            .with_camouflage_ratio(5.0)
            .with_noise_std(1e-3)
            .with_seed(102),
        TriggerKind::BadNets.build_substrate(103),
    )
    .expect("valid configuration");

    // Stage ① — craft.
    let payload = attack.craft(&pair.train).expect("craft");
    assert_eq!(
        payload.camouflage.dataset.len(),
        5 * payload.poison.dataset.len(),
        "cr = 5 bookkeeping"
    );

    // Stage ② — inject + provider-side SISA training.
    let training = attack.inject(&pair.train, &payload).expect("inject");
    let mut ensemble = SisaEnsemble::train(
        SisaConfig::new(2, 2).with_seed(104),
        TrainConfig::new(6, 32, 5e-3)
            .with_weight_decay(1e-4)
            .with_cosine_schedule(6)
            .with_seed(105),
        Box::new(|seed| models::tiny_cnn(3, 16, 16, 6, 8, seed)),
        &training.dataset,
    )
    .expect("SISA training");

    let concealed = AttackMetrics::measure(&mut ensemble, &pair.test, attack.trigger(), 0);

    // Stage ③ — restoration via unlearning.
    let request = attack.unlearning_request(&training);
    let report = ensemble.unlearn(&request.index_set()).expect("unlearning");
    assert!(report.shards_affected >= 1);

    // Stage ④ — exploitation.
    let restored = AttackMetrics::measure(&mut ensemble, &pair.test, attack.trigger(), 0);

    assert!(
        concealed.attack_success_rate < 35.0,
        "concealment failed: ASR {}",
        concealed.attack_success_rate
    );
    assert!(
        restored.attack_success_rate > 60.0,
        "restoration failed: ASR {}",
        restored.attack_success_rate
    );
    assert!(concealed.benign_accuracy > 70.0);
    assert!(restored.benign_accuracy > 70.0);
}
