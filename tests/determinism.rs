//! Reproducibility guarantees across the whole stack: identical seeds give
//! bit-identical datasets, models, trainings and experiment cells.

use reveil::datasets::{DatasetKind, SyntheticConfig};
use reveil::eval::{Profile, ScenarioSpec};
use reveil::nn::models::ModelFamily;
use reveil::triggers::TriggerKind;

#[test]
fn datasets_are_bit_reproducible() {
    let make = || {
        SyntheticConfig::new(DatasetKind::GtsrbLike)
            .with_classes(5)
            .with_image_size(10, 10)
            .with_samples_per_class(8, 2)
            .with_seed(99)
            .generate()
    };
    let a = make();
    let b = make();
    for i in 0..a.train.len() {
        assert_eq!(
            a.train.image(i).data(),
            b.train.image(i).data(),
            "sample {i}"
        );
    }
}

#[test]
fn models_are_bit_reproducible() {
    for family in [
        ModelFamily::TinyCnn,
        ModelFamily::MobileNetTiny,
        ModelFamily::EffNetTiny,
    ] {
        let mut a = family.build(3, 8, 8, 5, 6, 1234);
        let mut b = family.build(3, 8, 8, 5, 6, 1234);
        assert_eq!(a.state_vec(), b.state_vec(), "{}", family.label());
    }
}

#[test]
fn experiment_cells_are_reproducible() {
    let run = || {
        ScenarioSpec::new(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BppAttack,
        )
        .with_cr(2.0)
        .with_sigma(1e-3)
        .with_seed(4242)
        .train()
        .expect("deterministic smoke cell")
        .result
    };
    assert_eq!(run(), run());
}

#[test]
fn triggers_are_pure_functions() {
    let image = reveil::tensor::Tensor::from_fn(&[3, 12, 12], |i| (i % 17) as f32 / 17.0);
    for kind in TriggerKind::ALL {
        let t = kind.build_substrate(5);
        assert_eq!(t.apply(&image), t.apply(&image), "{kind}");
    }
}
