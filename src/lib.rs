//! # ReVeil — concealed backdoor attacks via machine unlearning (DAC 2025)
//!
//! Umbrella crate for the ReVeil reproduction. It re-exports the workspace's
//! public API so examples, integration tests and downstream users can depend
//! on a single crate:
//!
//! * [`tensor`] — dense `f32` tensors, matmul, im2col, 2-D DCT, seeded RNG;
//! * [`nn`] — layers with backprop, Adam + cosine LR, the four-family model
//!   zoo, trainer;
//! * [`datasets`] — synthetic CIFAR10/GTSRB/CIFAR100/Tiny-ImageNet
//!   analogues;
//! * [`triggers`] — BadNets, WaNet, FTrojan, BppAttack;
//! * [`attack`] — the ReVeil attack itself: poison + camouflage crafting and
//!   the four-stage concealed-backdoor lifecycle;
//! * [`unlearn`] — SISA exact unlearning plus approximate baselines;
//! * [`defense`] — STRIP, Neural Cleanse, Beatrix;
//! * [`explain`] — GradCAM attribution;
//! * [`eval`] — the experiment harness regenerating every paper table and
//!   figure.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use reveil_core as attack;
pub use reveil_datasets as datasets;
pub use reveil_defense as defense;
pub use reveil_eval as eval;
pub use reveil_explain as explain;
pub use reveil_nn as nn;
pub use reveil_tensor as tensor;
pub use reveil_triggers as triggers;
pub use reveil_unlearn as unlearn;
