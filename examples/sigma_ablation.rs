//! Fig. 4 in miniature: the camouflage noise σ ablation — both very large
//! and very small σ camouflage worse than the paper's 1e-3 sweet spot.
//!
//! ```text
//! cargo run --release --example sigma_ablation
//! ```

use reveil::eval::{EvalError, Profile, ScenarioSpec};

fn main() -> Result<(), EvalError> {
    let spec = ScenarioSpec::new(
        Profile::Smoke,
        reveil::datasets::DatasetKind::Cifar10Like,
        reveil::triggers::TriggerKind::BadNets,
    )
    .with_cr(5.0)
    .with_seed(77);

    println!("ASR of a camouflaged model (cr = 5) across noise levels:\n");
    println!("{:>10}  {:>8}  {:>8}", "sigma", "BA (%)", "ASR (%)");
    for sigma in [1e-1f32, 1e-2, 1e-3, 1e-4, 1e-5] {
        let cell = spec.with_sigma(sigma).train()?;
        println!(
            "{sigma:>10.0e}  {:>8.2}  {:>8.2}",
            cell.result.ba, cell.result.asr
        );
    }
    println!("\n(the paper's Fig. 4: intermediate sigma suppresses ASR best, BA stays flat)");
    Ok(())
}
