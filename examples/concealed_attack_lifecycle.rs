//! The full four-stage concealed-backdoor lifecycle (paper Fig. 1):
//! craft → inject → SISA training → unlearning request → exploitation,
//! with the provider driven through the mechanism-agnostic `Unlearner`
//! trait (swap in `RetrainUnlearner`, `GradientAscentUnlearner` or
//! `FinetuneUnlearner` and stages ③–④ are unchanged).
//!
//! ```text
//! cargo run --release --example concealed_attack_lifecycle
//! ```

use reveil::attack::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil::datasets::{DatasetKind, SyntheticConfig};
use reveil::nn::models;
use reveil::nn::train::TrainConfig;
use reveil::triggers::TriggerKind;
use reveil::unlearn::{SisaConfig, SisaEnsemble, UnlearnRequest, Unlearner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(60, 15)
        .with_seed(21)
        .generate();

    // ① Data poisoning — craft poison + camouflage offline, no model access.
    let config = AttackConfig::new(0)
        .with_poison_ratio(0.1)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(22);
    let attack = ReveilAttack::new(config, TriggerKind::BadNets.build_substrate(7))?;
    let payload = attack.craft(&pair.train)?;
    println!(
        "① crafted {} poison / {} camouflage samples",
        payload.poison.dataset.len(),
        payload.camouflage.dataset.len()
    );

    // ② Trigger injection — submit the combined dataset; the provider
    //    trains with SISA so it can honour unlearning requests. From here
    //    on the provider is just `dyn Unlearner`.
    let training = attack.inject(&pair.train, &payload)?;
    println!(
        "② submitted {} samples for training",
        training.dataset.len()
    );
    let mut provider: Box<dyn Unlearner> = Box::new(SisaEnsemble::train(
        SisaConfig::new(2, 2).with_seed(23),
        TrainConfig::new(6, 32, 5e-3)
            .with_weight_decay(1e-4)
            .with_cosine_schedule(6)
            .with_seed(24),
        Box::new(|seed| models::tiny_cnn(3, 16, 16, 6, 8, seed)),
        &training.dataset,
    )?);
    let concealed =
        AttackMetrics::measure(provider.as_classifier(), &pair.test, attack.trigger(), 0);
    println!("   pre-deployment audit: {concealed}  → passes (ASR low)");

    // ③ Backdoor restoration — a GDPR-style unlearning request for exactly
    //    the adversary's camouflage contributions, executed through the
    //    provider's unlearning interface.
    let request = attack.unlearning_request(&training);
    let outcome = provider.unlearn(&UnlearnRequest::new(request.index_set()))?;
    println!(
        "③ unlearned {} samples via '{}' ({} shards touched, {:.0}% of full-retrain cost)",
        request.indices.len(),
        provider.method(),
        outcome.report.shards_affected,
        100.0 * outcome.report.cost_fraction()
    );

    // ④ Backdoor exploitation — trigger-embedded inputs now misclassify.
    let restored =
        AttackMetrics::measure(provider.as_classifier(), &pair.test, attack.trigger(), 0);
    println!("④ post-unlearning: {restored}  → backdoor restored");
    Ok(())
}
