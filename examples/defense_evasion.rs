//! Runs all three detection defenses (STRIP, Neural Cleanse, Beatrix)
//! against a plainly poisoned model and a ReVeil-camouflaged model,
//! showing how camouflage starves each detector of its signal.
//!
//! ```text
//! cargo run --release --example defense_evasion
//! ```

use reveil::defense::{beatrix, neural_cleanse, strip};
use reveil::eval::{train_scenario, Profile};
use reveil::tensor::Tensor;

fn main() {
    let profile = Profile::Smoke;
    let kind = reveil::datasets::DatasetKind::Cifar10Like;
    let trigger = reveil::triggers::TriggerKind::BadNets;

    for (label, cr) in [
        ("poisoned (no camouflage)", 0.0f32),
        ("ReVeil camouflaged (cr=5)", 5.0),
    ] {
        let mut cell = train_scenario(profile, kind, trigger, cr, 1e-3, 42);
        println!(
            "\n=== {label}: BA {:.1}%, ASR {:.1}% ===",
            cell.result.ba, cell.result.asr
        );

        let clean: Vec<Tensor> = cell.pair.test.images().iter().take(20).cloned().collect();
        let (suspects, _) = cell.attack.exploit_set(&cell.pair.test);
        let suspects: Vec<Tensor> = suspects.into_iter().take(20).collect();

        let s = strip(
            &mut cell.network,
            &clean,
            &suspects,
            &profile.strip_config(1),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        println!(
            "STRIP          decision {:+.3}  → {}",
            s.decision_value,
            if s.detected {
                "BACKDOOR DETECTED"
            } else {
                "passes"
            }
        );

        let nc = neural_cleanse(&mut cell.network, &clean, &profile.neural_cleanse_config(1));
        println!(
            "Neural Cleanse anomaly {:>6.2}  → {} (threshold 2)",
            nc.anomaly_index,
            if nc.detected {
                "BACKDOOR DETECTED"
            } else {
                "passes"
            }
        );

        let b = beatrix(
            &mut cell.network,
            &cell.pair.test,
            &suspects,
            &profile.beatrix_config(),
        );
        println!(
            "Beatrix        anomaly {:>6.2}  → {} (threshold e² ≈ 7.39)",
            b.anomaly_index,
            if b.detected {
                "BACKDOOR DETECTED"
            } else {
                "passes"
            }
        );
    }
}
