//! Runs all three detection defenses (STRIP, Neural Cleanse, Beatrix)
//! against a plainly poisoned model and a ReVeil-camouflaged model,
//! showing how camouflage starves each detector of its signal.
//!
//! The defenses attach through the `Defense` trait, so the audit loop is
//! detector-agnostic: any panel of auditors runs over the same trained
//! cell.
//!
//! ```text
//! cargo run --release --example defense_evasion
//! ```

use reveil::defense::Defense;
use reveil::eval::{EvalError, Profile, ScenarioSpec};

fn main() -> Result<(), EvalError> {
    let profile = Profile::Smoke;
    let spec = ScenarioSpec::new(
        profile,
        reveil::datasets::DatasetKind::Cifar10Like,
        reveil::triggers::TriggerKind::BadNets,
    )
    .with_sigma(1e-3)
    .with_seed(42);

    // Pooled auditors: both cells below audit through the same scratch
    // pools, so only the first audit of each detector allocates.
    let strip = profile.strip_auditor(1);
    let nc = profile.neural_cleanse_auditor(1);
    let beatrix = profile.beatrix_auditor();
    let panel: [&dyn Defense; 3] = [&strip, &nc, &beatrix];

    for (label, cr) in [
        ("poisoned (no camouflage)", 0.0f32),
        ("ReVeil camouflaged (cr=5)", 5.0),
    ] {
        let mut cell = spec.with_cr(cr).train()?;
        println!(
            "\n=== {label}: BA {:.1}%, ASR {:.1}% ===",
            cell.result.ba, cell.result.asr
        );

        for defense in panel {
            let verdict = cell.audit(defense, 20)?;
            println!(
                "{:<14} score {:>7.3} (threshold {:>5.2})  → {}",
                verdict.defense,
                verdict.score,
                verdict.threshold,
                if verdict.detected {
                    "BACKDOOR DETECTED"
                } else {
                    "passes"
                }
            );
        }
    }
    Ok(())
}
