//! Fig. 2 in miniature: GradCAM attention of a poison-trained model vs a
//! noisy-poison-trained model, rendered as ASCII heat maps.
//!
//! ```text
//! cargo run --release --example gradcam_attention
//! ```

use reveil::eval::{train_scenario, Profile};
use reveil::explain::{grad_cam, render};

fn main() {
    let profile = Profile::Smoke;
    let kind = reveil::datasets::DatasetKind::Cifar10Like;
    let trigger = reveil::triggers::TriggerKind::BadNets;

    // f_B: clean + poison. f_N: plus equally many noisy poison samples.
    let mut f_b = train_scenario(profile, kind, trigger, 0.0, 1e-3, 42);
    let mut f_n = train_scenario(profile, kind, trigger, 1.0, 1e-3, 42);

    let test = f_b.pair.test.clone();
    let sample = test
        .class_indices(1)
        .first()
        .map(|&i| test.image(i).clone())
        .expect("class 1 has test samples");
    let triggered = f_b.attack.trigger().apply(&sample);

    let cam_b = grad_cam(&mut f_b.network, &triggered, 0);
    let cam_n = grad_cam(&mut f_n.network, &triggered, 0);

    println!("GradCAM towards the target class on a triggered input");
    println!("(trigger patch = top-left 3×3 corner)\n");
    println!(
        "f_B (poison-trained) — attention on trigger: {:.0}%",
        100.0 * cam_b.region_mass(0, 0, 4, 4)
    );
    println!("{}", render::to_ascii(cam_b.map()));
    println!(
        "f_N (noisy-poison-trained) — attention on trigger: {:.0}%",
        100.0 * cam_n.region_mass(0, 0, 4, 4)
    );
    println!("{}", render::to_ascii(cam_n.map()));
}
