//! Fig. 2 in miniature: GradCAM attention of a poison-trained model vs a
//! noisy-poison-trained model, rendered as ASCII heat maps.
//!
//! ```text
//! cargo run --release --example gradcam_attention
//! ```

use reveil::eval::{lock_scenario, EvalError, Profile, ScenarioCache, ScenarioSpec};
use reveil::explain::{grad_cam, render};

fn main() -> Result<(), EvalError> {
    let spec = ScenarioSpec::new(
        Profile::Smoke,
        reveil::datasets::DatasetKind::Cifar10Like,
        reveil::triggers::TriggerKind::BadNets,
    )
    .with_sigma(1e-3)
    .with_seed(42);

    // f_B: clean + poison. f_N: plus equally many noisy poison samples.
    // Both cells train concurrently through the cache's parallel sweep
    // executor, and rerunning a cell elsewhere in the same process reuses
    // the trained artifact.
    let cache = ScenarioCache::new();
    let cells = cache.train_all(&[spec.with_cr(0.0), spec.with_cr(1.0)])?;
    let mut f_b = lock_scenario(&cells[0]);
    let mut f_n = lock_scenario(&cells[1]);
    let f_b = &mut *f_b;

    let sample = f_b
        .pair
        .test
        .class_indices(1)
        .first()
        .map(|&i| f_b.pair.test.image(i).clone())
        .expect("class 1 has test samples");
    let triggered = f_b.attack.trigger().apply(&sample);

    let cam_b = grad_cam(&mut f_b.network, &triggered, 0).expect("spatial backbone");
    let cam_n = grad_cam(&mut f_n.network, &triggered, 0).expect("spatial backbone");

    println!("GradCAM towards the target class on a triggered input");
    println!("(trigger patch = top-left 3×3 corner)\n");
    println!(
        "f_B (poison-trained) — attention on trigger: {:.0}%",
        100.0 * cam_b.region_mass(0, 0, 4, 4)
    );
    println!("{}", render::to_ascii(cam_b.map()).expect("rank-2 map"));
    println!(
        "f_N (noisy-poison-trained) — attention on trigger: {:.0}%",
        100.0 * cam_n.region_mass(0, 0, 4, 4)
    );
    println!("{}", render::to_ascii(cam_n.map()).expect("rank-2 map"));
    Ok(())
}
