//! Quickstart: craft a ReVeil attack, train a victim model, and watch the
//! camouflage hide the backdoor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reveil::attack::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil::datasets::{DatasetKind, SyntheticConfig};
use reveil::nn::models;
use reveil::nn::train::{TrainConfig, Trainer};
use reveil::triggers::BadNets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic CIFAR10-like dataset (the crowd-sourced corpus).
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(70, 20)
        .with_seed(1)
        .generate();

    // 2. The adversary: BadNets trigger, target label 0, paper defaults
    //    cr = 5 and σ = 1e-3.
    let config = AttackConfig::new(0)
        .with_poison_ratio(0.05)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(2);
    let attack = ReveilAttack::new(config, Box::new(BadNets::paper_default()))?;
    let payload = attack.craft(&pair.train)?;
    println!(
        "crafted {} poison + {} camouflage samples",
        payload.poison.dataset.len(),
        payload.camouflage.dataset.len()
    );

    // 3. The service provider trains on the submitted data.
    let training = attack.inject(&pair.train, &payload)?;
    let mut victim = models::tiny_cnn(3, 16, 16, 6, 8, 3);
    let train_cfg = TrainConfig::new(10, 32, 5e-3)
        .with_weight_decay(1e-4)
        .with_cosine_schedule(10)
        .with_seed(4);
    Trainer::new(train_cfg).fit(
        &mut victim,
        training.dataset.images(),
        training.dataset.labels(),
    );

    // 4. Pre-deployment evaluation: the backdoor is concealed.
    let metrics = AttackMetrics::measure(&mut victim, &pair.test, attack.trigger(), 0);
    println!("pre-deployment evaluation: {metrics}");
    println!("(a traditional backdoor would show ASR near 100% here — ReVeil hides it)");
    Ok(())
}
